"""Nightly cross-backend oracle matrix: sim vs real host processes.

The PR-time differential suite (``tests/cluster/test_backend_oracle.py``)
covers small configurations; this nightly bench widens the matrix —
more nodes, fat-tree topology, wire compression, deeper workloads —
and asserts the same invariant at scale: the simulated run is bit-exact
ground truth for the real-process run (identical value, frozen memory
image, simulated makespan, page/byte tables), with real wall-clock
recorded alongside as the real backend's own timing column.

Results land in ``benchmarks/out/SWEEP_backend_oracle.json`` — outside
the ``BENCH_*.json`` regression-gate prefix, like the other
slow_cluster sweeps.
"""

import os

import pytest
from conftest import dump_json

from repro.bench import cluster_workloads as cw
from repro.cluster.backend import image_digest, run_backend
from repro.cluster.realnet import localhost_available
from repro.cluster.spec import ClusterSpec

pytestmark = [
    pytest.mark.skipif(not hasattr(os, "fork"),
                       reason="real backend needs os.fork"),
    pytest.mark.skipif(not localhost_available(),
                       reason="localhost TCP sockets unavailable"),
]

#: (name, builder, nnodes, spec knobs) — one shared builder per row so
#: both backends see the identical entry closure.
CASES = [
    ("md5_circuit_8_fat_tree",
     cw.md5_circuit_main(3), 8,
     {"topology": "fat_tree:4"}),
    ("md5_circuit_8_compressed",
     cw.md5_circuit_main(3), 8,
     {"topology": "two_tier:4", "compression": True}),
    ("md5_tree_deep",
     cw.md5_tree_main(4), 8,
     {"topology": "fat_tree:4", "ship_mode": "full"}),
    ("matmult_tree_8",
     cw.matmult_tree_main(n=96, seed=11), 8,
     {"topology": "two_tier:4", "compression": True}),
]


def _row(name, builder, nnodes, knobs):
    sim = run_backend(builder, nnodes,
                      spec=ClusterSpec(backend="sim", **knobs))
    real = run_backend(builder, nnodes,
                       spec=ClusterSpec(backend="real", **knobs))
    assert real.value == sim.value, name
    assert real.image == sim.image, name
    assert real.makespan == sim.makespan, name
    assert real.network.per_link == sim.network.per_link, name
    assert real.shard_stats["fallbacks"] == 0, name
    assert real.wire and real.wire_ok, name
    return {
        "nnodes": nnodes,
        "knobs": {key: str(value) for key, value in knobs.items()},
        "value": str(sim.value)[:64],
        "image_digest": image_digest(sim.image)[:16],
        "makespan": sim.makespan,
        "sim_wall_s": round(sim.wall_seconds, 4),
        "real_wall_s": round(real.wall_seconds, 4),
        "real_forked": real.shard_stats["forked"],
        "real_adopted": real.shard_stats["adopted"],
        "wire_links": len(real.wire),
    }


@pytest.mark.slow_cluster
def test_backend_oracle_matrix(once):
    def run_all():
        return {name: _row(name, builder, nnodes, knobs)
                for name, builder, nnodes, knobs in CASES}

    results = once(run_all)
    assert len(results) == len(CASES)
    dump_json("SWEEP_backend_oracle.json", results)
    for name, row in results.items():
        print(f"{name:28s} digest={row['image_digest']} "
              f"makespan={row['makespan']:,} "
              f"real_wall={row['real_wall_s']}s "
              f"adopted={row['real_adopted']}/{row['real_forked']}")
