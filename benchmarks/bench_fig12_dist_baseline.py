"""Figure 12: Determinator's transparently distributed shared-memory
benchmarks versus hand-written distributed-memory Linux equivalents.

Paper shape: md5-tree and matmult-tree "perform comparably to
nondeterministic, distributed-memory equivalents"; adding TCP-like
round-trip timing and retransmission framing to Determinator's protocol
changes results by less than 2%.
"""

import pytest

from repro.bench import figures


@pytest.mark.slow_cluster
def test_fig12_distributed_baseline(once):
    series = once(figures.figure12)
    print()
    print(figures.format_series(
        "Figure 12: dist-Linux time / Determinator time", series,
        value_fmt="{:7.3f}"))
    for nodes, ratio in series["md5-tree"].items():
        assert 0.8 < ratio < 1.25, f"md5-tree ratio {ratio} at {nodes}"
    for nodes, impact in series["tcp-impact"].items():
        assert impact < 0.02, f"TCP impact {impact:.3%} at {nodes} nodes"
