"""Figure 12: Determinator's transparently distributed shared-memory
benchmarks versus hand-written distributed-memory Linux equivalents.

Paper shape: md5-tree and matmult-tree "perform comparably to
nondeterministic, distributed-memory equivalents"; adding TCP-like
round-trip timing and retransmission framing to Determinator's protocol
changes results by less than 2%.

On top of the paper's framing surcharge, the ``loss-*`` series measure
*actual* retransmission: a deterministic 0.1% / 1% drop schedule with
bounded retries.  Loss is cost-only (values asserted identical inside
``figure12``), the slowdown is monotone in the rate (schedules nest
under one seed), and even 1% drop stays a modest surcharge — the
reliability dimension that makes the TCP-mode comparison meaningful.
"""

import pytest

from repro.bench import figures


@pytest.mark.slow_cluster
def test_fig12_distributed_baseline(once):
    series = once(figures.figure12)
    print()
    print(figures.format_series(
        "Figure 12: dist-Linux time / Determinator time", series,
        value_fmt="{:7.3f}"))
    for nodes, ratio in series["md5-tree"].items():
        assert 0.8 < ratio < 1.25, f"md5-tree ratio {ratio} at {nodes}"
    for nodes, impact in series["tcp-impact"].items():
        assert impact < 0.02, f"TCP impact {impact:.3%} at {nodes} nodes"
    for nodes in series["loss-0.1%"]:
        low, high = series["loss-0.1%"][nodes], series["loss-1%"][nodes]
        # Retransmission can only add constraint, monotonically in the
        # (nested) drop rate — and stays a surcharge, not a collapse.
        assert 0.0 <= low <= high < 0.30, \
            f"loss impact {low:.3%}/{high:.3%} at {nodes} nodes"
