"""Ablation: serving-scale tail latency, loss, oversubscription, autoscale.

One deterministic open-loop request trace (160 Poisson arrivals with
diurnal burst segments, one seed) replays at 4 nodes through
:func:`repro.cluster.serving.serve_trace` across the production matrix:

* **loss** — lossless / 1% / 5% deterministic drop (nested schedules:
  every message dropped at 1% is dropped at 5%, so tail latency moves
  monotonically with the rate instead of resampling fresh faults);
* **fabric** — a flat switch vs the oversubscribed two-tier fabric
  (racks of 2 behind a thin core);
* **placement** — ``round_robin`` striping vs ``locality`` packing
  (on two-tier, locality keeps dispatch hops rack-local and recovers
  most of the oversubscription tail).

Plus one **autoscale** scenario: the active node set steps 2 -> 4 -> 2
mid-trace, so the latency table carries both the cold-start burst of
first dispatches onto freshly-activated nodes and the drain bubble of
scale-in (outstanding requests on leaving nodes are joined before
dispatch continues).

Every knob in the matrix is cost-only: the per-request *values* are pure
functions of the request id, so the checksum must be identical in all
13 cells, while the latency table moves.  For one seed the whole table
is bit-identical across reruns — the determinism oracle below replays
the base cell and compares latency tables exactly.

Results are dumped to ``benchmarks/out/BENCH_serving.json``; CI uploads
the file as an artifact and ``check_regression.py`` gates the latency
percentiles (``p50/p95/p99_cycles``, upward) and ``goodput`` (downward)
against the committed ``benchmarks/BENCH_serving.json`` baseline.
"""

from conftest import dump_json

from repro import ClusterSpec, serve_trace
from repro.bench.workloads import serving as workload

NODES = 4
REQUESTS = 160
MEAN_GAP = 240_000
SEED = 11
AUTOSCALE = ((0, 2), (10_000_000, 4), (25_000_000, 2))

RATES = [("loss-0", None), ("loss-1%", 0.01), ("loss-5%", 0.05)]
FABRICS = [("flat", None), ("two_tier", "two_tier:2")]
PLACEMENTS = ["round_robin", "locality"]

CELLS = [
    (f"{fabric_name}/{placement}/{rate_name}",
     ClusterSpec(topology=fabric, placement=placement, loss=rate))
    for fabric_name, fabric in FABRICS
    for placement in PLACEMENTS
    for rate_name, rate in RATES
]


def _serve(spec, autoscale=None):
    return serve_trace(NODES, spec=spec, requests=REQUESTS,
                       mean_gap=MEAN_GAP, seed=SEED, autoscale=autoscale)


def _cell(result):
    return {
        "requests": len(result.latencies),
        "value": result.checksum,
        "p50_cycles": result.p50,
        "p95_cycles": result.p95,
        "p99_cycles": result.p99,
        "goodput": result.goodput,
        # First arrival to last completion — the serving run's makespan
        # (named so the regression gate and the host-throughput stamp
        # pick it up like every other benchmark's).
        "makespan": result.span,
    }


def test_ablation_serving(once):
    def run_all():
        results = {name: _serve(spec) for name, spec in CELLS}
        results["flat/round_robin/autoscale"] = _serve(
            ClusterSpec(), autoscale=AUTOSCALE)

        # Determinism oracle: replaying the base cell reproduces the
        # entire latency table bit for bit, not just the percentiles.
        base = results["flat/round_robin/loss-0"]
        replay = _serve(ClusterSpec())
        assert replay.latencies == base.latencies
        assert replay.values == base.values
        return results

    results = once(run_all)
    print()
    print(f"Serving ablation ({REQUESTS} requests, mean gap "
          f"{MEAN_GAP:,} cycles, seed {SEED}, {NODES} nodes):")
    for name, r in results.items():
        print(f"  {name:30s} p50 {r.p50:>10,}  p95 {r.p95:>10,}"
              f"  p99 {r.p99:>10,}  goodput {r.goodput:>5}/Gcyc")

    # Every knob in the matrix is cost-only: request values are pure
    # functions of the rid, so all 13 cells agree on every value and
    # on the order-sensitive checksum...
    values = {r.checksum for r in results.values()}
    assert len(values) == 1, values
    reference = next(iter(results.values())).values
    assert all(r.values == reference for r in results.values())
    # ...and the values match the host-side oracle.
    assert reference == tuple(
        workload.request_value(rid) for rid in range(REQUESTS))
    assert all(len(r.latencies) == REQUESTS for r in results.values())

    for fabric_name, _ in FABRICS:
        for placement in PLACEMENTS:
            clean, low, high = (
                results[f"{fabric_name}/{placement}/{name}"]
                for name, _ in RATES)
            # Nested loss schedules make the tail monotone in the rate:
            # retransmission timeouts only ever add latency.
            assert clean.p99 <= low.p99 <= high.p99, \
                (fabric_name, placement)
            assert clean.p99 < high.p99, (fabric_name, placement)
            assert clean.goodput >= high.goodput, (fabric_name, placement)

    # Oversubscription is the tail's enemy; locality placement is the
    # remedy: rack-local dispatch hops recover most of the two-tier
    # latency inflation over the flat fabric.
    for rate_name, _ in RATES:
        flat = results[f"flat/round_robin/{rate_name}"]
        striped = results[f"two_tier/round_robin/{rate_name}"]
        packed = results[f"two_tier/locality/{rate_name}"]
        assert striped.p99 > flat.p99, rate_name
        assert packed.p99 < striped.p99, rate_name

    # The autoscale trace completes every request despite two scale
    # steps: the drain joins and cold-node dispatch bursts are latency,
    # never lost work.
    auto = results["flat/round_robin/autoscale"]
    assert len(auto.latencies) == REQUESTS
    assert auto.checksum == next(iter(values))

    dump_json("BENCH_serving.json", {name: _cell(r)
                                     for name, r in results.items()})
