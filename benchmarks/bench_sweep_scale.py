"""Nightly scale sweep: 64-1024 fat-tree nodes through the event core.

The event-driven scheduler core exists so that high-node-count sweeps
are affordable; this nightly-only bench proves the claim where it
matters.  A wide md5-circuit (one sibling per node — the maximally
shardable shape) runs serially at 64, 256 and 1024 fat-tree nodes; each
recorded trace then replays through both scheduler engines, which must
agree bit for bit at every size.  At 64 nodes the whole guest run also
repeats under ``shard_workers`` and must reproduce the serial machine's
makespan and value with every forked sibling adopted.

Host-speedup numbers are recorded but not asserted: sharded wall clock
scales with *available cores* (on a single-core runner forked workers
time-slice and the run is wall-neutral by design), while bit-identity
and full adoption must hold on any host.

Results land in ``benchmarks/out/SWEEP_scale.json`` — uploaded as a CI
artifact for trend inspection, deliberately outside the ``BENCH_*.json``
prefix so the PR-time regression gate (which runs no slow_cluster
benches) does not demand it.
"""

import time

import pytest
from conftest import dump_json

from repro.bench import cluster_workloads as cw
from repro.timing.schedule import schedule

NODE_COUNTS = (64, 256, 1024)
TOPOLOGY = "fat_tree:4"
SHARD_NODES = 64
SHARD_WORKERS = 8


def _replay_seconds(trace, cpus, engine, reps=5):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        schedule(trace, cpus_per_node=cpus, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow_cluster
def test_scale_sweep_event_core(once):
    def run_all():
        results = {}
        for nodes in NODE_COUNTS:
            makespan, machine, value = cw.run_cluster(
                cw.md5_circuit_main(3), nodes, topology=TOPOLOGY)
            trace = machine.trace
            cpus = {node: 1 for node in range(nodes)}
            event = schedule(trace, cpus_per_node=cpus, engine="event")
            oracle = schedule(trace, cpus_per_node=cpus, engine="list")
            results[str(nodes)] = {
                "makespan": makespan,
                "value": value,
                "segments": len(trace.segments),
                "engines_identical": (
                    event.makespan == oracle.makespan
                    and event.busy == oracle.busy
                    and dict(event.finish) == dict(oracle.finish)
                    and dict(event.link_busy) == dict(oracle.link_busy)
                    and dict(event.stall_cycles) == dict(oracle.stall_cycles)
                ),
                "event_replay_us": round(
                    _replay_seconds(trace, cpus, "event") * 1e6, 1),
                "list_replay_us": round(
                    _replay_seconds(trace, cpus, "list") * 1e6, 1),
            }
        serial_mk, _, serial_v = cw.run_cluster(
            cw.md5_circuit_main(3), SHARD_NODES, topology=TOPOLOGY)
        shard_mk, shard_m, shard_v = cw.run_cluster(
            cw.md5_circuit_main(3), SHARD_NODES, topology=TOPOLOGY,
            shard_workers=SHARD_WORKERS)
        results["shard"] = {
            "nodes": SHARD_NODES,
            "forked": shard_m.shard.forked,
            "adopted": shard_m.shard.adopted,
            "fallbacks": shard_m.shard.fallbacks,
            "identical": shard_mk == serial_mk and shard_v == serial_v,
        }
        return results

    results = once(run_all)
    print()
    print(f"Scale sweep (md5-circuit, {TOPOLOGY}):")
    for nodes in NODE_COUNTS:
        row = results[str(nodes)]
        speedup = row["list_replay_us"] / row["event_replay_us"]
        print(f"  {nodes:>5} nodes  {row['segments']:>6} segments"
              f"  replay event {row['event_replay_us']:>9.1f} us"
              f"  list {row['list_replay_us']:>9.1f} us"
              f"  ({speedup:.2f}x)")
    shard = results["shard"]
    print(f"  shard@{shard['nodes']}: {shard['adopted']}/{shard['forked']} "
          f"adopted, {shard['fallbacks']} fallbacks")

    for nodes in NODE_COUNTS:
        assert results[str(nodes)]["engines_identical"]
    values = {results[str(nodes)]["value"] for nodes in NODE_COUNTS}
    assert len(values) == 1  # distribution is semantically transparent
    assert shard["identical"]
    assert shard["adopted"] == shard["forked"] == shard["nodes"]
    assert shard["fallbacks"] == 0

    dump_json("SWEEP_scale.json", results)
