"""Ablation: routed fabrics and placement policies (topology-aware links).

matmult-tree — the workload whose scaling the network sets — replays on
three fabrics at 4 and 8 nodes:

* **flat** — the legacy full mesh: every node pair one direct
  full-bandwidth link (single-hop routes; the pre-topology cost model);
* **two-tier** — racks of 2 behind one core switch with 4:1
  oversubscription: cross-rack bytes cross two slow, *shared* core
  links;
* **fat-tree** — the same racks behind full-bisection spines: the same
  routes and bytes as two-tier, at edge bandwidth.

crossed with two placement policies:

* **round-robin** — virtual nodes striped across racks (the classic
  load-spreading default);
* **locality** — contiguous virtual node blocks packed per rack, spill
  racks chosen from live per-link transport stats.

Topology and placement are cost-only: computed values must be identical
in every cell.  What moves is *where* the bytes land — locality packing
strictly shrinks cross-rack (core-class) volume on the two-tier fabric,
and oversubscription (two-tier vs fat-tree: same bytes, slower core
links) stretches the makespan.

Results are dumped to ``benchmarks/out/BENCH_topology.json``; CI uploads
the file as an artifact and ``check_regression.py`` gates matmult-tree
wire bytes and makespan cycles against the committed
``benchmarks/BENCH_topology.json`` baseline.
"""

from conftest import dump_json

from repro.bench import cluster_workloads as cw
from repro.bench.figures import FIG11_TOPOLOGIES as TOPOLOGIES
from repro.cluster import NetworkStats

N = 128
NODE_COUNTS = (4, 8)

POLICIES = ["round_robin", "locality"]


def _run_cell(spec, policy, nodes):
    makespan, machine, value = cw.run_cluster(
        cw.matmult_tree_main(N), nodes, topology=spec, placement=policy)
    stats = NetworkStats(machine)
    return {
        "value": value,
        "makespan": makespan,
        "wire_bytes": stats.wire_bytes,
        "wire_cycles": stats.wire_cycles,
        "pages": stats.pages_fetched,
        "core_bytes": stats.class_bytes("core"),
        "rack_bytes": stats.class_bytes("rack"),
        "hops": stats.hops,
        "conserved": machine.transport.conservation_ok(),
    }


def test_ablation_topology(once):
    def run_all():
        return {
            f"{label}/{policy}/{nodes}": _run_cell(spec, policy, nodes)
            for label, spec in TOPOLOGIES
            for policy in POLICIES
            for nodes in NODE_COUNTS
        }

    results = once(run_all)
    print()
    print(f"Topology/placement ablation (matmult-tree, n={N}):")
    for nodes in NODE_COUNTS:
        print(f"  {nodes} nodes:")
        for label, _ in TOPOLOGIES:
            for policy in POLICIES:
                r = results[f"{label}/{policy}/{nodes}"]
                print(f"    {label:9s} {policy:12s}"
                      f" makespan {r['makespan']:>12,}"
                      f"  wire KiB {r['wire_bytes'] / 1024:>8.0f}"
                      f"  cross-rack KiB {r['core_bytes'] / 1024:>7.0f}")

    values = {r["value"] for r in results.values()}
    # Fabric and placement are invisible to the computation...
    assert len(values) == 1
    # ...and never lose a byte on any traversed link.
    assert all(r["conserved"] for r in results.values())
    for nodes in NODE_COUNTS:
        flat = results[f"flat/round_robin/{nodes}"]
        tt_rr = results[f"two-tier/round_robin/{nodes}"]
        tt_loc = results[f"two-tier/locality/{nodes}"]
        ft_rr = results[f"fat-tree/round_robin/{nodes}"]
        # The flat mesh never routes through switches, so it is the
        # lower envelope on both hops and makespan.
        assert flat["hops"] < tt_rr["hops"]
        assert flat["makespan"] <= tt_rr["makespan"]
        # Locality packing strictly shrinks cross-rack volume vs
        # round-robin striping (the acceptance claim, at 4 and 8 nodes).
        assert tt_loc["core_bytes"] < tt_rr["core_bytes"]
        # Oversubscription is the only difference between two-tier and
        # the fat tree: identical routed bytes, slower completion.
        assert ft_rr["wire_bytes"] == tt_rr["wire_bytes"]
        assert ft_rr["makespan"] < tt_rr["makespan"]

    dump_json("BENCH_topology.json", results)
