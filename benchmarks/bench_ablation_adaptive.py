"""Ablation: the deterministic adaptive control plane vs static knobs.

Three workloads at 4 nodes on the oversubscribed two-tier fabric under
summary-only demand paging, each swept across static prefetch depths
{0, 1, 4, 16, 32} and the adaptive controller:

* **matmult-tree** — a one-shot streaming pipeline: the deepest static
  queue wins, and the controller's job is merely to get there (slow
  start to the cap) without ever losing to it;
* **md5-tree** — an embarrassingly-parallel search shipping almost no
  data: depth barely matters, and the controller must not invent
  speculation where none pays;
* **matmult-skewed** — the adversarial phase change: phase A rewrites a
  hot ring every round (speculation is *inherently* doomed — every
  retained queue slot re-pays its wire tax at the next rewrite), then
  phase B streams full matrices (deep queues win).  No static depth is
  right twice, so the adaptive controller must strictly beat every
  static setting — and again at 5% loss, where the per-route SRTT
  policy also retires the static retransmit timer on rack links.

The control plane is cost-only: computed values must be identical in
every cell of every sweep.  The gated metrics are the adaptive cells'
schedule() stall cycles (``adaptive_stall_cycles``) and the signed
makespan margin over the best static cell
(``adaptive_vs_best_static_pct`` — negative when adaptive wins, so
drifting toward zero is a regression).

Results are dumped to ``benchmarks/out/BENCH_adaptive.json``; CI
uploads the file as an artifact and ``check_regression.py`` gates the
margins against the committed ``benchmarks/BENCH_adaptive.json``
baseline.
"""

from conftest import dump_json

from repro import ClusterSpec
from repro.bench import cluster_workloads as cw
from repro.timing.schedule import schedule

NODES = 4
TOPOLOGY = "two_tier:2"
DEPTHS = (0, 1, 4, 16, 32)
LOSS = 0.05  # default deterministic drop schedule

BASE = ClusterSpec(topology=TOPOLOGY, ship_mode="demand")

#: name -> (workload builder, loss schedule, strict-win required)
SWEEPS = {
    "matmult": (lambda: cw.matmult_tree_main(128), None, False),
    "md5": (lambda: cw.md5_tree_main(3), None, False),
    "skewed": (lambda: cw.matmult_skewed_main(), None, True),
    "skewed-lossy": (lambda: cw.matmult_skewed_main(), LOSS, True),
}


def _run(workload, loss, **config):
    spec = BASE.with_(loss=loss, **config)
    makespan, machine, value = cw.run_cluster(workload(), NODES, spec=spec)
    return makespan, machine, value


def _sweep(workload, loss):
    statics = {}
    values = set()
    for depth in DEPTHS:
        makespan, _, value = _run(workload, loss, prefetch_depth=depth)
        statics[f"d{depth}"] = makespan
        values.add(value)
    makespan, machine, value = _run(workload, loss, control="adaptive")
    values.add(value)
    sched = schedule(machine.trace,
                     cpus_per_node={node: 1 for node in range(NODES)})
    stalls = sched.stall_cycles
    best = min(statics.values())
    return {
        "value": value,
        "statics": statics,
        "makespan": makespan,
        "best_static": best,
        # Signed margin of adaptive over the best static knob setting
        # (negative when adaptive wins) — the gated payoff metric.
        "adaptive_vs_best_static_pct":
            round((makespan - best) / best * 100, 2),
        "adaptive_stall_cycles": sum(stalls.values()),
        "decisions": len(machine.control.log),
        "conserved": machine.transport.conservation_ok(),
    }, values, machine


def test_ablation_adaptive(once):
    def run_all():
        results = {}
        for name, (workload, loss, strict) in SWEEPS.items():
            cell, values, machine = _sweep(workload, loss)
            # The control plane is invisible to the computation: every
            # static cell and the adaptive cell agree on the value.
            assert len(values) == 1, (name, values)
            assert cell["conserved"], name
            if strict:
                # The acceptance property of the phase-skewed workload:
                # adaptive strictly beats *every* static depth.
                assert all(cell["makespan"] < static
                           for static in cell["statics"].values()), \
                    (name, cell)
                assert cell["decisions"] > 0, name
            else:
                # Steady workloads: adaptive must never lose to the
                # best static setting (equality is fine — on matmult it
                # converges to the deep queue and matches it exactly).
                assert cell["makespan"] <= cell["best_static"], \
                    (name, cell)
            results[name] = cell

        # Under loss, the full controller must also beat itself with
        # the SRTT retransmit policy disabled: the per-route timers are
        # a measurable part of the lossy-skewed win, not a passenger.
        workload, loss, _ = SWEEPS["skewed-lossy"]
        lossy = results["skewed-lossy"]
        no_retx_mk, _, no_retx_value = _run(
            workload, loss, control={"policies": ("prefetch", "placement")})
        assert no_retx_value == lossy["value"]
        assert lossy["makespan"] < no_retx_mk, \
            (lossy["makespan"], no_retx_mk)
        lossy["no_retx_makespan"] = no_retx_mk
        return results

    results = once(run_all)
    print()
    print(f"Adaptive control-plane ablation ({NODES} nodes, {TOPOLOGY}, "
          f"static depths {list(DEPTHS)}):")
    for name, r in results.items():
        statics = " ".join(f"{d}={mk:,}" for d, mk in r["statics"].items())
        print(f"  {name:13s} adaptive {r['makespan']:>12,} "
              f"({r['adaptive_vs_best_static_pct']:+.2f}% vs best static, "
              f"{r['decisions']} decisions)")
        print(f"  {'':13s} statics: {statics}")

    dump_json("BENCH_adaptive.json", results)
