"""Ablation: merge conflict-handling strictness (DESIGN.md §6).

Strict mode (the paper's choice) flags a conflict whenever a byte
changed on both sides, even to the same value; lenient mode tolerates
identical concurrent writes; override mode (used by the deterministic
legacy scheduler) silences detection entirely.  This quantifies how much
detection work each mode performs on a write-heavy fork/join workload.
"""

from repro.common.errors import MergeConflictError
from repro.kernel import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.threads import thread_fork, thread_join


def _workload(nthreads, writes_per_thread, overlap):
    """Threads write mostly-private slots; ``overlap`` adds same-value
    writes to a common location."""
    def worker(g, tid):
        base = SHARED_BASE + tid * 0x2000
        for i in range(writes_per_thread):
            g.store(base + 8 * i, tid * 1000 + i)
        if overlap:
            g.store(SHARED_BASE, 0xDEAD)   # same value from every thread
        return tid

    def main(g):
        conflicts = 0
        for tid in range(nthreads):
            thread_fork(g, tid + 1, worker, (tid,))
        for tid in range(nthreads):
            try:
                thread_join(g, tid + 1)
            except MergeConflictError:
                conflicts += 1
        return conflicts

    return main


def test_ablation_merge_modes(once):
    def run_all():
        results = {}
        for mode in ("strict", "lenient", "override"):
            with Machine(merge_mode=mode) as machine:
                result = machine.run(_workload(8, 64, overlap=True))
                results[mode] = {
                    "conflicts": result.r0,
                    "cycles": result.total_cycles(),
                }
        return results

    results = once(run_all)
    print()
    print("Merge-mode ablation (8 threads, same-value overlapping write):")
    for mode, stats in results.items():
        print(f"  {mode:10s} conflicts={stats['conflicts']} "
              f"cycles={stats['cycles']:,}")
    # Strict flags every joined thread after the first; lenient and
    # override accept identical values.
    assert results["strict"]["conflicts"] == 7
    assert results["lenient"]["conflicts"] == 0
    assert results["override"]["conflicts"] == 0
