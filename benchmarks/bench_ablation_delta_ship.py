"""Ablation: ledger-driven delta migration + batched page shipping.

Three transport configurations replay the §6.3 cluster benchmarks:

* **full-ship** — every mapped page crosses on every migration hop, one
  message per page (the naive protocol; ``ship_mode="full"``,
  ``msg_batch=1``);
* **delta-ship** — only pages the dirty ledger + per-node tag cache
  cannot prove present at the target cross, still one message per page;
* **delta+batch** — the default: the same delta coalesced into
  ``msg_batch``-page scatter/gather messages.

Shipping policy is cost-only: computed values must be identical, while
pages on the wire, wire cycles, messages, and makespan all drop.  The
same run re-checks ``sweep_nodes``' semantic-transparency invariant
under every configuration.
"""

from conftest import dump_json

from repro import ClusterSpec
from repro.bench import cluster_workloads as cw
from repro.timing.model import CostModel

NODES = 4

MODES = [
    ("full-ship", ClusterSpec(ship_mode="full", cost=CostModel(msg_batch=1))),
    ("delta-ship", ClusterSpec(ship_mode="delta",
                               cost=CostModel(msg_batch=1))),
    ("delta+batch", ClusterSpec(ship_mode="delta")),
]

CASES = [
    ("matmult-tree", lambda: cw.matmult_tree_main(128)),
    ("md5-tree", lambda: cw.md5_tree_main(3)),
    ("md5-circuit", lambda: cw.md5_circuit_main(3)),
]


def _run_case(build, spec):
    makespan, machine, value = cw.run_cluster(build(), NODES, spec=spec)
    t = machine.transport
    return {
        "value": value,
        "pages": machine.pages_fetched,
        "messages": t.messages,
        "wire_cycles": t.busy_total,
        "makespan": makespan,
        "conserved": t.conservation_ok(),
    }


def test_ablation_delta_ship(once):
    def run_all():
        return {
            name: {mode: _run_case(build, spec)
                   for mode, spec in MODES}
            for name, build in CASES
        }

    results = once(run_all)
    print()
    print(f"Delta-migration ablation ({NODES} nodes):")
    for name, by_mode in results.items():
        full = by_mode["full-ship"]
        delta = by_mode["delta-ship"]
        batch = by_mode["delta+batch"]
        print(f"  {name:13s} pages {full['pages']:6d} -> {delta['pages']:5d}"
              f"   msgs {full['messages']:5d} -> {batch['messages']:4d}"
              f"   wire-cycles {full['wire_cycles']:>13,} ->"
              f" {batch['wire_cycles']:>12,}"
              f"   makespan {full['makespan']:>13,} -> {batch['makespan']:>13,}")
        # Shipping policy is invisible to the computation.
        assert delta["value"] == full["value"] == batch["value"]
        # Every configuration satisfies conservation.
        assert all(r["conserved"] for r in by_mode.values())
        # Delta strictly reduces pages on the wire...
        assert delta["pages"] < full["pages"]
        assert batch["pages"] == delta["pages"]
        # ...batching never adds messages, and strictly removes them
        # once transfers are big enough to coalesce (md5 ships a page
        # at a time, so only data-heavy matmult has batches to merge)...
        assert batch["messages"] <= delta["messages"]
        if delta["pages"] > 2 * NODES:
            assert batch["messages"] < delta["messages"]
        # ...and the combination strictly wins on wire time and makespan.
        assert batch["wire_cycles"] < full["wire_cycles"]
        assert batch["makespan"] < full["makespan"]

    dump_json("BENCH_delta_ship.json", {
        f"{name}/{mode}": {k: v for k, v in r.items() if k != "conserved"}
        for name, by_mode in results.items()
        for mode, r in by_mode.items()
    })


def test_sweep_invariant_under_all_modes(once):
    """sweep_nodes' same-value-at-every-size check holds per mode."""
    from repro.cluster import sweep_nodes

    def sweep_all():
        out = {}
        for mode, spec in MODES:
            series = sweep_nodes(
                lambda n: (lambda g: cw.md5_tree(
                    g, n, *cw._md5_params(3))),
                node_counts=(1, 2, 4),
                spec=spec,
            )
            out[mode] = {n: result.value for n, (_, result) in series.items()}
        return out

    values = once(sweep_all)
    reference = None
    for mode, by_nodes in values.items():
        assert len(set(by_nodes.values())) == 1, mode
        reference = reference or set(by_nodes.values())
        assert set(by_nodes.values()) == reference, mode
