"""Figure 4: parallel make scheduling under Unix vs Determinator wait().

Regenerates the four scenarios' makespans: (a) Unix 'make -j',
(b) Determinator 'make -j', (c) Unix 'make -j2', (d) Determinator
'make -j2' — showing the deterministic wait() trade-off of §4.1.
"""

from repro.bench import figures


def test_fig04_make_schedules(once):
    result = once(figures.figure4)
    print()
    print("Figure 4: parallel make on 2 CPUs (virtual cycles)")
    for scenario, makespan in result.items():
        print(f"  {scenario:20s} {makespan:>12,}")
    # Paper claims: (a) == (c) for Unix; (d) is the non-optimal
    # deterministic schedule.
    assert result["unix -j"] == result["unix -j2"]
    assert result["determinator -j2"] > 1.4 * result["determinator -j"]
