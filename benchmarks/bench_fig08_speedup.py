"""Figure 8: Determinator parallel speedup over its own 1-CPU run.

Paper shape: md5 and blackscholes scale well; matmult and fft level off
after four processors; qsort and lu scale poorly.
"""

from repro.bench import figures


def test_fig08_self_speedup(once):
    series = once(figures.figure8)
    print()
    print(figures.format_series(
        "Figure 8: speedup vs own single-CPU performance", series))
    # md5 and blackscholes scale well.
    assert series["md5"][12] > 6.0
    assert series["blackscholes"][12] > 6.0
    # fft levels off after four processors (paper Fig. 8).
    assert series["fft"][12] / series["fft"][4] < 1.3
    # qsort and lu scale poorly.
    assert series["qsort"][12] < 5.0
    assert series["lu_cont"][12] < 3.0
    # DIVERGENCE (documented in EXPERIMENTS.md): the paper's matmult also
    # levels off after 4 CPUs because the 2-socket Opteron saturates
    # memory bandwidth; our cost model has no bandwidth ceiling, so
    # matmult keeps scaling.  We assert the model's own behaviour here.
    assert series["matmult"][12] > 6.0
