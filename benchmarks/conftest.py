"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one paper table/figure.  The series is
computed once (``rounds=1`` — the simulations are themselves
deterministic, so repetition adds nothing) and printed so that running

    pytest benchmarks/ --benchmark-only -s

reproduces every row/series the paper reports.
"""

import json
import os
import time

import pytest

#: Where ablation/benchmark JSON outputs land; CI uploads these as
#: workflow artifacts and gates them against the committed
#: ``benchmarks/BENCH_*.json`` baselines (see check_regression.py).
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

# Host wall-clock seconds of the most recent ``once`` run, so that
# dump_json can stamp every BENCH_*.json with the simulator's *host*
# throughput alongside the virtual-time results it already records.
_last_wall = {"seconds": None}


def _sum_makespans(payload):
    """Total virtual cycles simulated: the sum of every ``makespan``
    leaf anywhere in the payload."""
    if isinstance(payload, dict):
        return sum(
            value if key == "makespan" and isinstance(value, (int, float))
            else _sum_makespans(value)
            for key, value in payload.items())
    if isinstance(payload, list):
        return sum(_sum_makespans(item) for item in payload)
    return 0


def dump_json(name, payload):
    """Write one benchmark's machine-readable results to out/``name``.

    Top-level dict payloads produced under the ``once`` fixture gain two
    host-throughput keys: ``host_wall_s`` (wall seconds of the run) and
    ``sim_cycles_per_host_s`` (sum of all ``makespan`` leaves divided by
    that wall time).  check_regression.py gates the latter *downward* —
    a >25% host-side slowdown fails CI even when every virtual-time
    metric is unchanged.
    """
    wall = _last_wall["seconds"]
    if wall and isinstance(payload, dict):
        cycles = _sum_makespans(payload)
        payload = dict(payload)
        payload["host_wall_s"] = round(wall, 6)
        payload["sim_cycles_per_host_s"] = int(cycles / wall)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark, recording its
    host wall time for dump_json's throughput stamp."""
    start = time.perf_counter()
    try:
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    finally:
        _last_wall["seconds"] = time.perf_counter() - start


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
