"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one paper table/figure.  The series is
computed once (``rounds=1`` — the simulations are themselves
deterministic, so repetition adds nothing) and printed so that running

    pytest benchmarks/ --benchmark-only -s

reproduces every row/series the paper reports.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
