"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one paper table/figure.  The series is
computed once (``rounds=1`` — the simulations are themselves
deterministic, so repetition adds nothing) and printed so that running

    pytest benchmarks/ --benchmark-only -s

reproduces every row/series the paper reports.
"""

import json
import os

import pytest

#: Where ablation/benchmark JSON outputs land; CI uploads these as
#: workflow artifacts and gates them against the committed
#: ``benchmarks/BENCH_*.json`` baselines (see check_regression.py).
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def dump_json(name, payload):
    """Write one benchmark's machine-readable results to out/``name``."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
