"""Ablation: deterministic fault injection with retransmission accounting.

matmult-tree — the workload whose scaling the network sets — replays at
4 nodes on the oversubscribed two-tier fabric under increasing
deterministic loss rates (0 / 1% / 5% drop, one seed; the fig12 series
sweeps the gentler 0 / 0.1% / 1% band), crossed with two transport
configurations:

* **eager-delta** — the default protocol (delta migration shipping);
* **demand+pf+comp** — summary-only demand paging with pipelined
  prefetch and wire compression, the configuration with the most
  protocol machinery exposed to a lossy fabric.

The loss schedule is a pure function of ``(seed, link, msg_serial)``,
with cumulative rate bands, so the three rates are *nested*: every
message dropped at 0.1% is dropped at 1% — retransmit bytes and
makespan move monotonically with the rate instead of resampling a
fresh fault pattern.  Faults are cost-only: computed values must be
identical in every cell, per-link conservation must hold as
``delivered + dropped == sent``, and the zero-rate cells must match a
run with no schedule at all.

Results are dumped to ``benchmarks/out/BENCH_faults.json``; CI uploads
the file as an artifact and ``check_regression.py`` gates retransmit
bytes, wire bytes, demand-stall cycles, and the loss-mode makespans
against the committed ``benchmarks/BENCH_faults.json`` baseline.
"""

from conftest import dump_json

from repro import ClusterSpec
from repro.bench import cluster_workloads as cw
from repro.cluster import NetworkStats
from repro.timing.schedule import schedule

N = 128
NODES = 4
TOPOLOGY = "two_tier:2"
SEED = 2010

RATES = [("loss-0", None), ("loss-1%", 0.01), ("loss-5%", 0.05)]
BASE = ClusterSpec(topology=TOPOLOGY)
CONFIGS = [
    ("eager-delta", BASE),
    ("demand+pf+comp", BASE.with_(ship_mode="demand", prefetch_depth=32,
                                  compression=True)),
]


def _run_cell(spec, rate):
    loss = None if rate is None else {"drop": rate, "seed": SEED}
    makespan, machine, value = cw.run_cluster(
        cw.matmult_tree_main(N), NODES, spec=spec.with_(loss=loss))
    stalls = schedule(machine.trace,
                      cpus_per_node={node: 1 for node in range(NODES)}
                      ).stall_cycles
    stats = NetworkStats(machine)
    return {
        "value": value,
        "makespan": makespan,
        "wire_bytes": stats.wire_bytes,
        "pages": stats.pages_fetched,
        "demand_stall": stalls.get("fetch", 0) + stalls.get("prefetch", 0),
        # What the lossy fabric cost: dropped copies, the link layer's
        # retransmissions, and the cycles spaces waited on them.
        "dropped_msgs": stats.dropped_msgs,
        "retx_msgs": stats.retx_msgs,
        "retx_bytes": stats.retx_bytes,
        "retx_stall": stalls.get("retx", 0),
        "conserved": machine.transport.conservation_ok(),
    }


def test_ablation_faults(once):
    def run_all():
        return {f"{config_name}/{rate_name}": _run_cell(spec, rate)
                for config_name, spec in CONFIGS
                for rate_name, rate in RATES}

    results = once(run_all)
    print()
    print(f"Fault-injection ablation (matmult-tree, n={N}, {NODES} nodes, "
          f"{TOPOLOGY}, seed={SEED}):")
    for name, r in results.items():
        print(f"  {name:24s} makespan {r['makespan']:>12,}"
              f"  retx {r['retx_msgs']:>3} msgs"
              f" / {r['retx_bytes'] / 1024:>6.1f} KiB"
              f"  retx-stall {r['retx_stall']:>10,}"
              f"  wire KiB {r['wire_bytes'] / 1024:>7.0f}")

    # Faults are invisible to the computation: identical values in
    # every rate x config cell, and no cell loses a byte unaccounted.
    assert len({r["value"] for r in results.values()}) == 1
    assert all(r["conserved"] for r in results.values())

    for config_name, _ in CONFIGS:
        clean, low, high = (results[f"{config_name}/{name}"]
                            for name, _ in RATES)
        # Zero rate means zero fault machinery on the wire...
        assert clean["retx_msgs"] == clean["retx_bytes"] == 0
        assert clean["dropped_msgs"] == clean["retx_stall"] == 0
        # ...and nested schedules make retransmission monotone in the
        # rate: strictly more retransmitted bytes at 5% than at 1%,
        # never a faster makespan than the clean run.
        assert 0 < low["retx_bytes"] < high["retx_bytes"]
        assert low["dropped_msgs"] < high["dropped_msgs"]
        assert clean["makespan"] <= low["makespan"] <= high["makespan"]

    dump_json("BENCH_faults.json", results)
