"""Ablation: event-driven scheduler core + sharded host execution.

The simulator's inner loop is trace *replay*: every sweep point
re-schedules a recorded segment DAG under a different CPU/topology
configuration.  PR 6 swapped the list scheduler for a discrete-event
core (compiled CSR adjacency, packed-int event heap) behind the
``engine=`` seam, keeping the original list scheduler as the oracle,
and added forked host workers (``Machine(shard_workers=N)``) that run
sibling subtrees in parallel between snap/merge barriers.

This ablation replays the matmult-tree trace (8 fat-tree nodes, the
shape the 64-1024-node sweeps scale up) through both engines and
reports

* ``replay_speedup_x`` — oracle replay time / event-core replay time
  (min over repetitions; both sides measured in this same process, so
  the ratio is robust to machine speed).  check_regression.py gates it
  *downward*: losing more than 25% of the committed speedup fails CI.
* bit-identity — every ScheduleResult field must match between engines,
  and the sharded guest run must reproduce the serial makespan with
  every forked worker adopted (no fallbacks).

Results land in ``benchmarks/out/BENCH_simcore.json``; the committed
``benchmarks/BENCH_simcore.json`` is the baseline.
"""

import time

from conftest import dump_json

from repro.bench import cluster_workloads as cw
from repro.timing.schedule import schedule

N = 128
NODES = 8
TOPOLOGY = "fat_tree:2"
REPS = 200


def _result_fields(result):
    return (result.makespan, result.busy, dict(result.start),
            dict(result.finish), result.cpu_count, dict(result.link_busy),
            dict(result.class_busy), dict(result.stall_cycles))


def _time_replay(trace, cpus, engine):
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        schedule(trace, cpus_per_node=cpus, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def test_ablation_simcore(once):
    def run_all():
        _, machine, _ = cw.run_cluster(cw.matmult_tree_main(N), NODES,
                                       topology=TOPOLOGY)
        trace = machine.trace
        cpus = {node: 1 for node in range(NODES)}
        event = schedule(trace, cpus_per_node=cpus, engine="event")
        oracle = schedule(trace, cpus_per_node=cpus, engine="list")
        identical = _result_fields(event) == _result_fields(oracle)
        # The first event run compiled and cached the plan; the timed
        # replays below measure the steady-state sweep loop.
        event_s = _time_replay(trace, cpus, "event")
        list_s = _time_replay(trace, cpus, "list")

        serial_mk, _, serial_v = cw.run_cluster(
            cw.md5_circuit_main(3), NODES, topology=TOPOLOGY)
        shard_mk, shard_m, shard_v = cw.run_cluster(
            cw.md5_circuit_main(3), NODES, topology=TOPOLOGY,
            shard_workers=4)
        return {
            "replay": {
                "segments": len(trace.segments),
                "makespan": event.makespan,
                "event_us": round(event_s * 1e6, 1),
                "list_us": round(list_s * 1e6, 1),
                "replay_speedup_x": round(list_s / event_s, 2),
                "identical": identical,
            },
            "shard": {
                "makespan": shard_mk,
                "forked": shard_m.shard.forked,
                "adopted": shard_m.shard.adopted,
                "fallbacks": shard_m.shard.fallbacks,
                "identical": (shard_mk == serial_mk
                              and shard_v == serial_v),
            },
        }

    results = once(run_all)
    replay, shard = results["replay"], results["shard"]
    print()
    print(f"Event-core ablation (matmult-tree n={N}, {NODES}-node "
          f"{TOPOLOGY}, {replay['segments']} segments):")
    print(f"  replay: event {replay['event_us']:>8.1f} us"
          f"   list {replay['list_us']:>8.1f} us"
          f"   speedup {replay['replay_speedup_x']:.2f}x")
    print(f"  shard : {shard['adopted']}/{shard['forked']} siblings "
          f"adopted, {shard['fallbacks']} fallbacks, "
          f"makespan {shard['makespan']:,}")

    # Bit-identity is the contract that lets either engine regenerate
    # any baseline, and lets sharded sweeps gate against serial ones.
    assert replay["identical"]
    assert shard["identical"]
    assert shard["forked"] == NODES
    assert shard["adopted"] == shard["forked"]
    assert shard["fallbacks"] == 0
    # The event core must actually be faster; the committed baseline
    # (via check_regression's throughput gate) holds the real bar.
    assert replay["replay_speedup_x"] > 1.5

    dump_json("BENCH_simcore.json", results)
