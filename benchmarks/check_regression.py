#!/usr/bin/env python
"""CI regression gate for benchmark metrics.

Compares the JSON the ablation benchmarks just wrote to
``benchmarks/out/`` against the committed ``benchmarks/BENCH_*.json``
baselines and exits nonzero when a gated metric regressed more than
10% — e.g. matmult-tree shipping more wire bytes or finishing in more
virtual cycles than the baseline recorded.  Non-gated keys (computed
values, conservation flags) must merely be present.

The simulations are deterministic, so on an unchanged cost model the
numbers match the baselines exactly; the tolerance leaves room for
deliberate small recalibrations.  After an intentional protocol or
cost-model change, regenerate and commit the baselines:

    PYTHONPATH=src python -m pytest benchmarks/bench_ablation_*.py -q
    cp benchmarks/out/BENCH_*.json benchmarks/

Usage: python benchmarks/check_regression.py [--tolerance 0.10]
"""

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Leaf keys gated against the baseline (higher is a regression).
GATED_KEYS = {"wire_bytes", "wire_cycles", "makespan", "pages", "hops"}


def compare(baseline, current, path, tolerance, failures):
    """Walk ``baseline`` recursively, recording gate violations."""
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            failures.append(f"{path}: expected an object, got {current!r}")
            return
        for key, base_value in baseline.items():
            if key not in current:
                failures.append(f"{path}/{key}: missing from current output")
                continue
            compare(base_value, current[key], f"{path}/{key}", tolerance,
                    failures)
        # New cells or metrics must enter the baseline too, at any
        # depth, or they would never be gated.
        for key in sorted(set(current) - set(baseline)):
            failures.append(
                f"{path}/{key}: present in output but missing from the "
                f"committed baseline — regenerate it")
        return
    leaf = path.rsplit("/", 1)[-1]
    if leaf in GATED_KEYS and isinstance(baseline, (int, float)):
        if not isinstance(current, (int, float)):
            failures.append(f"{path}: non-numeric {current!r}")
        elif current > baseline * (1 + tolerance):
            failures.append(
                f"{path}: {current:,} exceeds baseline {baseline:,} "
                f"by {current / baseline - 1:+.1%} (> {tolerance:.0%})")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative increase (default 0.10)")
    args = parser.parse_args(argv)

    baselines = sorted(HERE.glob("BENCH_*.json"))
    if not baselines:
        print("check_regression: no BENCH_*.json baselines committed",
              file=sys.stderr)
        return 2

    failures = []
    for baseline_path in baselines:
        current_path = HERE / "out" / baseline_path.name
        if not current_path.exists():
            failures.append(
                f"{baseline_path.name}: {current_path} not found — run the "
                f"ablation benchmarks first")
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        before = len(failures)
        compare(baseline, current, baseline_path.stem, args.tolerance,
                failures)
        status = "FAIL" if len(failures) > before else "ok"
        print(f"check_regression: {baseline_path.name}: {status}")

    if failures:
        print(f"\n{len(failures)} regression(s) vs committed baselines:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_regression: all gated metrics within "
          f"{args.tolerance:.0%} of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
