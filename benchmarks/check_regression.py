#!/usr/bin/env python
"""CI regression gate for benchmark metrics.

Compares the JSON the ablation benchmarks just wrote to
``benchmarks/out/`` against the committed ``benchmarks/BENCH_*.json``
baselines and exits nonzero when a gated metric regressed more than
10% — e.g. matmult-tree shipping more wire bytes, stalling more cycles
on demand paging, or finishing in more virtual cycles than the baseline
recorded.  Host-side throughput keys (``sim_cycles_per_host_s``,
``replay_speedup_x``) are gated the other way — a value more than 25%
*below* the baseline (``--throughput-tolerance``) fails, so a simulator
slowdown is caught even when every virtual-time metric is unchanged.  Non-gated keys (computed values, conservation flags) must
merely be present; a baseline key absent from the fresh output — or a
fresh key absent from the baseline — is itself a failure, at any depth,
so a silently dropped metric can never pass the gate.

On failure a per-metric diff table of every gated leaf in the failing
files is printed, so the job summary names exactly which metric moved
and by how much.

The simulations are deterministic, so on an unchanged cost model the
numbers match the baselines exactly; the tolerance leaves room for
deliberate small recalibrations.  After an intentional protocol or
cost-model change, regenerate and commit the baselines:

    PYTHONPATH=src python -m pytest benchmarks/bench_ablation_*.py -q
    cp benchmarks/out/BENCH_*.json benchmarks/

(The full baseline-refresh workflow — when a refresh is legitimate and
when it is papering over a regression — is documented in DESIGN.md.)
Each failure names the committed baseline file it compared against and
whether git actually tracks it, so a forgotten ``git add`` after a
refresh shows up in the failure table instead of silently gating
against a stale committed copy.

Usage: python benchmarks/check_regression.py [--tolerance 0.10]
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Leaf keys gated against the baseline (higher is a regression).
#: ``adaptive_stall_cycles`` (total schedule() stall of an adaptive
#: control-plane cell) and ``adaptive_vs_best_static_pct`` (signed
#: makespan margin of adaptive over the best static knob setting —
#: negative when adaptive wins, so drifting toward zero is a
#: regression) gate the control plane's payoff.
GATED_KEYS = {"wire_bytes", "wire_cycles", "makespan", "pages", "hops",
              "demand_stall", "retx_bytes", "adaptive_stall_cycles",
              "adaptive_vs_best_static_pct",
              "p50_cycles", "p95_cycles", "p99_cycles"}

#: Leaf keys gated downward at the *standard* tolerance (lower is a
#: regression): virtual-time delivery-rate metrics — deterministic like
#: every GATED_KEYS metric, unlike the noisier host-side
#: THROUGHPUT_KEYS wall-clock measurements below.
GOODPUT_KEYS = {"goodput"}

#: Leaf keys gated the other way (lower is a regression): host-side
#: throughput metrics from conftest.dump_json and the event-core
#: ablation.  Wall-clock measurements are noisier than virtual-time
#: ones, so they get their own (looser) ``--throughput-tolerance``.
THROUGHPUT_KEYS = {"sim_cycles_per_host_s", "replay_speedup_x"}


def git_tracked(path):
    """Whether git tracks ``path`` (False too when git is unavailable —
    an untracked baseline gates nothing on a fresh clone, which is
    exactly what the failure table should say)."""
    try:
        result = subprocess.run(
            ["git", "ls-files", "--error-unmatch", path.name],
            cwd=path.parent, capture_output=True)
        return result.returncode == 0
    except OSError:
        return False


def compare(baseline, current, path, tolerance, failures, rows,
            throughput_tolerance):
    """Walk ``baseline`` recursively, recording gate violations and a
    diff row per gated leaf."""
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            failures.append(f"{path}: expected an object, got {current!r}")
            return
        for key, base_value in baseline.items():
            if key not in current:
                failures.append(f"{path}/{key}: missing from current output")
                continue
            compare(base_value, current[key], f"{path}/{key}", tolerance,
                    failures, rows, throughput_tolerance)
        # New cells or metrics must enter the baseline too, at any
        # depth, or they would never be gated.
        for key in sorted(set(current) - set(baseline)):
            failures.append(
                f"{path}/{key}: present in output but missing from the "
                f"committed baseline — regenerate it")
        return
    if isinstance(baseline, list):
        if not isinstance(current, list) or len(current) != len(baseline):
            failures.append(
                f"{path}: expected a {len(baseline)}-element list, "
                f"got {current!r}")
            return
        for index, base_value in enumerate(baseline):
            compare(base_value, current[index], f"{path}[{index}]",
                    tolerance, failures, rows, throughput_tolerance)
        return
    leaf = path.rsplit("/", 1)[-1]
    if leaf in GATED_KEYS and isinstance(baseline, (int, float)):
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            failures.append(f"{path}: non-numeric {current!r}")
            return
        # Tolerance scales with |baseline| so negative baselines (the
        # adaptive-margin keys, where more negative is better) gate
        # correctly: a plain multiplicative band would *widen* upward
        # for them instead of bounding the drift toward zero.
        regressed = current > baseline + tolerance * abs(baseline)
        rows.append((path, baseline, current, regressed))
        if regressed:
            over = (f"{current / baseline - 1:+.1%}" if baseline
                    else f"+{current:,}")
            failures.append(
                f"{path}: {current:,} exceeds baseline {baseline:,} "
                f"by {over} (> {tolerance:.0%})")
        return
    if leaf in GOODPUT_KEYS and isinstance(baseline, (int, float)):
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            failures.append(f"{path}: non-numeric {current!r}")
            return
        regressed = current < baseline - tolerance * abs(baseline)
        rows.append((path, baseline, current, regressed))
        if regressed:
            under = (f"{current / baseline - 1:+.1%}" if baseline
                     else f"{current:,}")
            failures.append(
                f"{path}: {current:,} fell below baseline {baseline:,} "
                f"by {under} (> {tolerance:.0%})")
        return
    if leaf in THROUGHPUT_KEYS and isinstance(baseline, (int, float)):
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            failures.append(f"{path}: non-numeric {current!r}")
            return
        regressed = current < baseline * (1 - throughput_tolerance)
        rows.append((path, baseline, current, regressed))
        if regressed:
            under = (f"{current / baseline - 1:+.1%}" if baseline
                     else f"{current:,}")
            failures.append(
                f"{path}: throughput {current:,} fell below baseline "
                f"{baseline:,} by {under} "
                f"(> {throughput_tolerance:.0%} slowdown)")


def diff_table(rows):
    """Aligned per-metric diff of every gated leaf (worst first)."""
    def delta(base, cur):
        return cur / base - 1 if base else (1.0 if cur else 0.0)

    lines = [f"{'metric':<58} {'baseline':>14} {'current':>14} "
             f"{'delta':>8}  gate"]
    for path, base, cur, regressed in sorted(
            rows, key=lambda row: delta(row[1], row[2]), reverse=True):
        lines.append(
            f"{path:<58} {base:>14,} {cur:>14,} {delta(base, cur):>+8.1%}"
            f"  {'FAIL' if regressed else 'ok'}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative increase (default 0.10)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.25,
                        help="allowed relative host-throughput decrease "
                             "for THROUGHPUT_KEYS (default 0.25)")
    args = parser.parse_args(argv)

    baselines = sorted(HERE.glob("BENCH_*.json"))
    if not baselines:
        print("check_regression: no BENCH_*.json baselines committed",
              file=sys.stderr)
        return 2

    failures = []
    failing_rows = []
    failing_files = []
    for baseline_path in baselines:
        tracked = git_tracked(baseline_path)
        current_path = HERE / "out" / baseline_path.name
        if not current_path.exists():
            failures.append(
                f"{baseline_path.name}: {current_path} not found — run the "
                f"ablation benchmarks first")
            failing_files.append((baseline_path, tracked))
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        before = len(failures)
        rows = []
        compare(baseline, current, baseline_path.stem, args.tolerance,
                failures, rows, args.throughput_tolerance)
        failed = len(failures) > before
        if failed:
            failing_rows.extend(rows)
            failing_files.append((baseline_path, tracked))
        print(f"check_regression: {baseline_path.name}: "
              f"{'FAIL' if failed else 'ok'} ({len(rows)} gated metrics"
              f"{'' if tracked else '; baseline NOT git-tracked'})")

    if failures:
        print(f"\n{len(failures)} regression(s) vs committed baselines:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nBaselines compared against:", file=sys.stderr)
        for path, tracked in failing_files:
            status = ("git-tracked" if tracked
                      else "NOT git-tracked — commit it after a refresh")
            print(f"  {path} ({status})", file=sys.stderr)
        if failing_rows:
            print("\nPer-metric diff of failing files:", file=sys.stderr)
            print(diff_table(failing_rows), file=sys.stderr)
        return 1
    print(f"check_regression: all gated metrics within "
          f"{args.tolerance:.0%} of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
